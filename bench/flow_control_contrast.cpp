// The title claim — "routing WITHOUT flow control": contrast the BHW
// hot-potato network against the full buffered flow-control family
// (store-and-forward, virtual cut-through, wormhole; fc::FlowControlScheme)
// across topologies, traffic patterns and offered loads. The expected
// physics (report Section 1.2.3, checked by the JSON verdict block):
// cut-through schemes beat store-and-forward on per-hop latency at low
// load, but every credit-throttled network saturates earlier than
// hot-potato, which keeps links busy instead of stalling sources.

#include "bench/common.hpp"
#include "buffered/flow_control.hpp"

#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace {

struct RowKey {
  hp::net::GridKind topo;
  hp::hotpotato::TrafficPattern traffic;
  double load;
  std::string network;  // "hot-potato" | "saf" | "vct" | "wormhole"
  bool operator<(const RowKey& o) const {
    return std::tie(topo, traffic, load, network) <
           std::tie(o.topo, o.traffic, o.load, o.network);
  }
};

struct RowVal {
  double throughput = 0.0;
  double per_hop = 0.0;
  double link_util = 0.0;
};

const char* topo_name(hp::net::GridKind k) {
  return k == hp::net::GridKind::Torus ? "torus" : "mesh";
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = hp::bench::common_flags();
  hp::util::Cli cli(argc, argv, flags);
  const bool full = cli.get_bool("full", false);
  const std::int32_t n = full ? 32 : 16;
  const std::uint32_t steps = hp::bench::steps_for(n);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // Shared scheme geometry, overridable with --fc= (the scheme= key is
  // ignored here — the sweep runs every scheme).
  hp::core::SimulationOptions base;
  base.model.n = n;
  base.model.steps = steps;
  base.engine.seed = seed;
  base.fc.flits_per_packet = 4;
  base.fc.queue_capacity = 8;
  base.fc.credit_delay = 1;
  hp::bench::apply_fc_flags(cli, base);

  hp::util::Table table({"topology", "traffic", "injectors_%", "network",
                         "link_util_%", "throughput_pkts_per_step",
                         "avg_delivery", "per_hop", "avg_wait", "max_wait"});
  std::vector<hp::obs::ModelChannel> models;
  std::map<RowKey, RowVal> vals;

  const hp::net::GridKind topologies[] = {hp::net::GridKind::Torus,
                                          hp::net::GridKind::Mesh};
  const hp::hotpotato::TrafficPattern patterns[] = {
      hp::hotpotato::TrafficPattern::Uniform,
      hp::hotpotato::TrafficPattern::Transpose};
  const double loads[] = {0.25, 0.50, 0.75, 1.00};

  for (const auto topo : topologies) {
    const hp::net::Grid grid(n, topo);
    for (const auto traffic : patterns) {
      for (const double load : loads) {
        hp::core::SimulationOptions o = base;
        o.model.topology = topo;
        o.model.traffic = traffic;
        o.model.injector_fraction = load;
        const char* tn = topo_name(topo);
        const char* pn = hp::hotpotato::traffic_pattern_name(traffic);
        {
          const auto r = hp::core::run_hotpotato(o);
          const RowVal v{static_cast<double>(r.report.delivered) / steps,
                         r.report.stretch(),
                         r.report.link_utilization(grid, steps)};
          table.add_row({tn, pn, 100.0 * load, "hot-potato",
                         100.0 * v.link_util, v.throughput,
                         r.report.avg_delivery_steps(), v.per_hop,
                         r.report.avg_inject_wait(),
                         r.report.max_inject_wait});
          models.push_back(r.model);
          vals[{topo, traffic, load, "hot-potato"}] = v;
        }
        for (const hp::fc::Kind scheme : hp::fc::kAllKinds) {
          o.fc.scheme = scheme;
          const auto r = hp::core::run_flow_control(o);
          const RowVal v{static_cast<double>(r.report.delivered) / steps,
                         r.report.per_hop_latency(),
                         r.report.link_utilization(grid, steps)};
          table.add_row({tn, pn, 100.0 * load, hp::fc::kind_name(scheme),
                         100.0 * v.link_util, v.throughput,
                         r.report.avg_delivery_steps(), v.per_hop,
                         r.report.avg_inject_wait(),
                         r.report.max_inject_wait});
          models.push_back(r.model);
          vals[{topo, traffic, load, hp::fc::kind_name(scheme)}] = v;
        }
      }
    }
  }

  // The paper's expected ordering, checked on the torus/uniform column.
  const auto at = [&](double load, const char* net) {
    return vals[{hp::net::GridKind::Torus,
                 hp::hotpotato::TrafficPattern::Uniform, load, net}];
  };
  const double lo = loads[0];
  const double hi = loads[3];
  // Saturation onset shows as superlinear latency growth: how much does
  // per-hop latency inflate when offered load scales from lo to hi?
  const auto latency_inflation = [&](const char* net) {
    const double base = at(lo, net).per_hop;
    return base > 0.0 ? at(hi, net).per_hop / base : 0.0;
  };
  std::map<std::string, bool> verdict;
  // Cut-through pipelining: fewer steps per hop than store-and-forward when
  // the network is lightly loaded.
  verdict["vct_lower_per_hop_than_saf_low_load"] =
      at(lo, "vct").per_hop < at(lo, "saf").per_hop;
  verdict["wormhole_lower_per_hop_than_saf_low_load"] =
      at(lo, "wormhole").per_hop < at(lo, "saf").per_hop;
  // No flow control wins at load: highest sustained throughput and link
  // utilization at full injection.
  bool hp_top_throughput = true;
  bool hp_top_util = true;
  for (const hp::fc::Kind scheme : hp::fc::kAllKinds) {
    const char* sn = hp::fc::kind_name(scheme);
    hp_top_throughput &= at(hi, "hot-potato").throughput > at(hi, sn).throughput;
    hp_top_util &= at(hi, "hot-potato").link_util > at(hi, sn).link_util;
  }
  verdict["hotpotato_highest_throughput_high_load"] = hp_top_throughput;
  verdict["hotpotato_highest_link_util_high_load"] = hp_top_util;
  // Earlier saturation: the credit-throttled cut-through schemes congest
  // internally as load scales 4x, inflating per-hop latency faster than the
  // deflecting hot-potato network does.
  verdict["vct_saturates_earlier_than_hotpotato"] =
      latency_inflation("vct") > latency_inflation("hot-potato");
  verdict["wormhole_saturates_earlier_than_hotpotato"] =
      latency_inflation("wormhole") > latency_inflation("hot-potato");

  std::map<std::string, double> headline = {
      {"hotpotato_throughput_full_load", at(hi, "hot-potato").throughput},
      {"saf_throughput_full_load", at(hi, "saf").throughput},
      {"vct_throughput_full_load", at(hi, "vct").throughput},
      {"wormhole_throughput_full_load", at(hi, "wormhole").throughput},
      {"vct_per_hop_low_load", at(lo, "vct").per_hop},
      {"saf_per_hop_low_load", at(lo, "saf").per_hop},
  };

  hp::bench::finish(
      table, cli,
      "Flow-control contrast on " + std::to_string(n) + "x" +
          std::to_string(n) +
          " torus+mesh (hot-potato vs saf/vct/wormhole, fc geometry " +
          base.fc.to_string() + ")",
      {}, models, headline, verdict);
  int failures = 0;
  for (const auto& [name, ok] : verdict) {
    if (!ok) {
      std::cout << "verdict FAILED: " << name << "\n";
      ++failures;
    }
  }
  if (failures == 0) std::cout << "\nall verdicts hold\n";
  return 0;
}
