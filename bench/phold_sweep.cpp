// PHOLD kernel characterization (the standard PDES benchmark the ROSS
// literature reports): committed event rate and rollback behaviour versus
// the remote-traffic fraction and lookahead, independent of the hot-potato
// application. Remote events are the straggler source; lookahead bounds how
// far an early message can land in a peer's past. The avg_batch column
// shows the remote-path send batching (envelopes per inbox push).

#include <algorithm>
#include <string>

#include "bench/common.hpp"
#include "des/phold.hpp"
#include "des/sequential.hpp"
#include "des/timewarp.hpp"

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const std::uint32_t lps = full ? 1024 : 256;
  const double end = full ? 200.0 : 100.0;

  // GVT algorithm matrix for the Time Warp rows: both algorithms by default
  // (the barrier rows are the historical baseline, the epoch rows show the
  // barrier phase collapsing); an explicit --gvt=mode=... narrows to one.
  hp::des::EngineConfig gvt_probe;
  const bool gvt_flag = cli.has("gvt");
  if (gvt_flag) hp::bench::apply_gvt_flags(cli, gvt_probe);
  const std::vector<hp::des::EngineConfig::GvtMode> gvt_modes =
      gvt_flag ? std::vector{gvt_probe.gvt_mode}
               : std::vector{hp::des::EngineConfig::GvtMode::Barrier,
                             hp::des::EngineConfig::GvtMode::Epoch};

  hp::util::Table table({"remote_%", "lookahead", "kernel", "events_per_s",
                         "rolled_back", "efficiency", "gvt_rounds",
                         "avg_batch"});
  std::vector<hp::obs::MetricsReport> metrics;
  double best_seq = 0.0, best_tw = 0.0;
  // Per-algorithm GVT phase time accumulated over every 4-PE run: the
  // headline contrast perf-smoke tracks (the epoch algorithm's point is
  // that the barrier wait collapses; see docs/GVT.md).
  double barrier_phase_ns = 0.0, epoch_phase_ns = 0.0;
  for (const double remote : {0.0, 0.1, 0.5, 1.0}) {
    for (const double lookahead : {0.5, 0.05}) {
      hp::des::PholdConfig pc;
      pc.num_lps = lps;
      pc.remote_fraction = remote;
      pc.lookahead = lookahead;

      hp::des::EngineConfig ec;
      ec.num_lps = lps;
      ec.end_time = end;
      // --telemetry / --metrics-out apply to every run of the sweep; the
      // exposition file ends up holding the last run's final snapshot, which
      // is what the CI Prometheus smoke greps.
      hp::bench::apply_telemetry_flags(cli, ec);
      {
        hp::des::PholdModel model(pc);
        hp::des::SequentialEngine seq(model, ec);
        auto s = seq.run();
        table.add_row({100.0 * remote, lookahead, "sequential",
                       s.event_rate(), std::uint64_t{0}, 1.0,
                       std::uint64_t{0}, 0.0});
        best_seq = std::max(best_seq, s.event_rate());
        metrics.push_back(std::move(s.metrics));
      }
      for (const hp::des::EngineConfig::GvtMode mode : gvt_modes) {
        for (const std::uint32_t pes : {2u, 4u}) {
          auto tc = ec;
          tc.num_pes = pes;
          tc.num_kps = 32;
          tc.gvt_interval_events = 1024;
          tc.gvt_mode = mode;
          if (gvt_flag) tc.gvt_interval_events = gvt_probe.gvt_interval_events;
          tc.optimism_window = 10.0 * pc.mean_delay;
          hp::des::PholdModel model(pc);
          hp::des::TimeWarpEngine tw(model, tc);
          auto t = tw.run();
          const bool epoch =
              mode == hp::des::EngineConfig::GvtMode::Epoch;
          // Barrier rows keep the historical kernel label so committed
          // baselines stay comparable; epoch rows are tagged explicitly.
          table.add_row({100.0 * remote, lookahead,
                         "timewarp-" + std::to_string(pes) + "pe" +
                             (epoch ? "-epoch" : ""),
                         t.event_rate(), t.rolled_back_events(),
                         t.efficiency(), t.gvt_rounds(),
                         t.avg_inbox_batch()});
          best_tw = std::max(best_tw, t.event_rate());
          if (pes == 4) {
            const auto& m = t.metrics.total;
            const double gvt_ns = static_cast<double>(
                m.ns(hp::obs::Phase::GvtBarrier) +
                m.ns(hp::obs::Phase::GvtEpoch));
            (epoch ? epoch_phase_ns : barrier_phase_ns) += gvt_ns;
          }
          metrics.push_back(std::move(t.metrics));
        }
      }
    }
  }
  // Best observed rates become the headline the perf-smoke CI job diffs
  // against the committed BENCH_phold_sweep.json baseline. The *_phase_ns
  // keys carry the 4-PE GVT phase time per algorithm (lower is better;
  // perf_delta.py inverts the sign convention on the _ns suffix) — only
  // present for algorithms the sweep actually ran.
  std::map<std::string, double> headline = {
      {"events_per_s", best_seq}, {"timewarp_events_per_s", best_tw}};
  if (barrier_phase_ns > 0.0) {
    headline["gvt_barrier_phase_ns"] = barrier_phase_ns;
  }
  if (epoch_phase_ns > 0.0) headline["gvt_epoch_phase_ns"] = epoch_phase_ns;
  hp::bench::finish(table, cli,
                    "PHOLD sweep: rollback pressure rises with remote "
                    "fraction and falls with lookahead",
                    metrics, {}, headline);
  return 0;
}
