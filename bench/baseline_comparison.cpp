// Related-work comparison (report Section 2, after Bartzis et al. [5]):
// hot-potato algorithm variants on 2-D tori of several sizes, dynamic and
// static (one-shot) workloads.

#include "baselines/deflection_policies.hpp"
#include "bench/common.hpp"

#include <vector>

#include <string>

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const std::vector<std::int32_t> sizes =
      full ? std::vector<std::int32_t>{8, 16, 32, 64}
           : std::vector<std::int32_t>{8, 16, 32};

  hp::util::Table table({"N", "workload", "algorithm", "delivered",
                         "avg_delivery", "stretch", "deflect_rate",
                         "avg_wait"});
  for (const std::int32_t n : sizes) {
    hp::hotpotato::BhwPolicy bhw(n);
    hp::baselines::GreedyPolicy greedy;
    hp::baselines::DimOrderPolicy dim;
    hp::baselines::OldestFirstPolicy oldest;
    const hp::hotpotato::RoutingPolicy* policies[] = {&bhw, &greedy, &dim,
                                                      &oldest};
    for (const bool dynamic : {true, false}) {
      for (const auto* p : policies) {
        hp::core::SimulationOptions o;
        o.model.n = n;
        o.model.injector_fraction = dynamic ? 0.75 : 0.0;
        o.model.steps = hp::bench::steps_for(n);
        o.model.policy = p;
        const auto r = hp::core::run_hotpotato(o).report;
        table.add_row({static_cast<std::int64_t>(n),
                       dynamic ? "dynamic" : "static", std::string(p->name()),
                       r.delivered, r.avg_delivery_steps(), r.stretch(),
                       r.deflection_rate(), r.avg_inject_wait()});
      }
    }
  }
  hp::bench::finish(table, cli,
                    "Hot-potato algorithm comparison on 2-D tori "
                    "(after the report's related work [5])");
  return 0;
}
