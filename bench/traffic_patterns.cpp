// Traffic-pattern study (extension beyond the report, which evaluates the
// uniform pattern only): the classic interconnection-network workloads on
// the BHW router, with delivery-time percentiles from the per-router
// histograms. Adversarial permutations concentrate load on specific rows/
// columns; hotspots concentrate it on a few sinks.

#include "bench/common.hpp"
#include "hotpotato/traffic.hpp"

#include <vector>

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const std::vector<std::int32_t> sizes =
      full ? std::vector<std::int32_t>{16, 32, 64}
           : std::vector<std::int32_t>{16, 32};

  hp::util::Table table({"N", "pattern", "delivered", "avg_delivery", "p50",
                         "p90", "p99", "stretch", "deflect_rate",
                         "avg_wait"});
  for (const std::int32_t n : sizes) {
    for (const hp::hotpotato::TrafficPattern p :
         {hp::hotpotato::TrafficPattern::Uniform,
          hp::hotpotato::TrafficPattern::Transpose,
          hp::hotpotato::TrafficPattern::BitComplement,
          hp::hotpotato::TrafficPattern::Hotspot,
          hp::hotpotato::TrafficPattern::NearestNeighbor}) {
      hp::core::SimulationOptions o;
      o.model.n = n;
      o.model.injector_fraction = 1.0;
      o.model.steps = hp::bench::steps_for(n);
      o.model.traffic = p;
      const auto r = hp::core::run_hotpotato(o).report;
      table.add_row({static_cast<std::int64_t>(n),
                     hp::hotpotato::traffic_pattern_name(p), r.delivered,
                     r.avg_delivery_steps(), r.delivery_percentile(0.5),
                     r.delivery_percentile(0.9), r.delivery_percentile(0.99),
                     r.stretch(), r.deflection_rate(), r.avg_inject_wait()});
    }
  }
  hp::bench::finish(table, cli,
                    "Traffic-pattern study at full injection load "
                    "(extension: the report evaluates uniform traffic only)");
  return 0;
}
