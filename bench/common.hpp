#pragma once

// Shared scaffolding for the figure-reproduction harnesses. Every binary
// prints the same rows the paper's figure plots, as an aligned table and
// (with --csv=...) as CSV. Default "quick" scales run in seconds on a
// laptop; --full reproduces the paper-scale sweeps (minutes to hours).

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "obs/metrics.hpp"
#include "obs/model_channel.hpp"
#include "util/cli.hpp"
#include "util/macros.hpp"
#include "util/json_writer.hpp"
#include "util/table.hpp"

namespace hp::bench {

struct FigureScale {
  std::vector<std::int32_t> sizes;        // torus dimensions N
  std::vector<double> loads;              // injector fractions
  std::vector<std::uint32_t> kp_counts;   // Fig 7/8 sweeps
  std::vector<std::uint32_t> pe_counts;   // Fig 5/6 sweeps
};

inline FigureScale quick_scale() {
  return {{8, 16, 24, 32, 48, 64},
          {0.25, 0.50, 0.75, 1.00},
          {4, 8, 16, 32, 64, 128},
          {1, 2, 4}};
}

// The report's sweeps: N up to 256 (65,536 LPs), KPs 4..256, PEs 1/2/4.
inline FigureScale full_scale() {
  return {{8, 16, 32, 64, 96, 128, 192, 256},
          {0.25, 0.50, 0.75, 1.00},
          {4, 8, 16, 32, 64, 128, 256},
          {1, 2, 4}};
}

// Steps scale with N so every configuration reaches delivery steady state
// (delivery time is O(N)).
inline std::uint32_t steps_for(std::int32_t n) {
  return static_cast<std::uint32_t>(4 * n);
}

inline core::SimulationOptions tw_options(std::int32_t n, double load,
                                          std::uint32_t pes,
                                          std::uint32_t kps) {
  core::SimulationOptions o;
  o.model.n = n;
  o.model.injector_fraction = load;
  // Same step budget as the sequential-figure benches (fig3/fig4/baseline):
  // steps_for reaches delivery steady state, so the Fig. 5/6/7/8 Time Warp
  // sweeps measure the same workload as the sequential curves.
  o.model.steps = steps_for(n);
  o.kernel = core::Kernel::TimeWarp;
  o.engine.num_pes = pes;
  o.engine.num_kps = kps;
  o.engine.gvt_interval_events = 1024;
  // Moving window keeps optimism sane when PEs outnumber cores; see
  // EXPERIMENTS.md for the effect on absolute rates.
  o.engine.optimism_window = 30.0;
  return o;
}

// Applies the shared --monitor[=interval] / --monitor-out=path flags to an
// engine config. Bare --monitor means every GVT round; --monitor=N emits one
// heartbeat per N rounds; without --monitor-out the stream goes to stderr.
// Only the Time Warp kernel emits heartbeats; the flag is harmless elsewhere.
inline void apply_monitor_flags(const util::Cli& cli, des::EngineConfig& cfg) {
  if (!cli.has("monitor")) return;
  cfg.obs.monitor = true;
  const std::int64_t interval = cli.get_int("monitor", 1);
  if (interval <= 0) {
    cli.usage_error("--monitor expects a positive interval, got " +
                    std::to_string(interval));
  }
  cfg.obs.monitor_interval = static_cast<std::uint32_t>(interval);
  cfg.obs.monitor_path = cli.get("monitor-out", "");
}

// Applies the shared --telemetry / --metrics-endpoint=<port|unix:path> /
// --metrics-out=FILE flags. Bare --telemetry records latency histograms into
// the final report; an endpoint or output file implies --telemetry and adds
// live Prometheus exposition (a loopback/unix listener, or a periodically
// rewritten text file for socket-less CI). Works on every kernel.
inline void apply_telemetry_flags(const util::Cli& cli,
                                  des::EngineConfig& cfg) {
  if (cli.has("telemetry")) cfg.obs.telemetry = true;
  if (cli.has("metrics-endpoint")) {
    cfg.obs.metrics_endpoint = cli.get("metrics-endpoint", "");
    if (cfg.obs.metrics_endpoint.empty()) {
      cli.usage_error("--metrics-endpoint expects <port> or unix:<path>");
    }
  }
  if (cli.has("metrics-out")) {
    cfg.obs.metrics_out = cli.get("metrics-out", "");
    if (cfg.obs.metrics_out.empty()) {
      cli.usage_error("--metrics-out expects a file path");
    }
  }
}

// Applies the shared --chaos=<spec> flag (deterministic fault injection on
// the Time Warp remote path; see des/fault.hpp for the grammar). A
// malformed spec is a usage error. Returns true when a plan was armed so
// harnesses can restrict it to their Time Warp runs.
inline bool apply_chaos_flags(const util::Cli& cli, des::EngineConfig& cfg) {
  if (!cli.has("chaos")) return false;
  std::string err;
  if (!des::FaultPlan::parse(cli.get("chaos", ""), cfg.fault, err)) {
    cli.usage_error("--chaos: " + err);
  }
  return cfg.fault.any();
}

// Applies the shared --migrate=<spec> flag (runtime KP load balancing on the
// Time Warp kernel; see des/migration.hpp for the grammar). Bare --migrate
// arms the defaults. A malformed spec is a usage error. Returns true when the
// balancer was armed so harnesses can restrict it to their Time Warp runs.
inline bool apply_migration_flags(const util::Cli& cli,
                                  des::EngineConfig& cfg) {
  if (!cli.has("migrate")) return false;
  std::string err;
  if (!des::MigrationConfig::parse(cli.get("migrate", ""), cfg.migration,
                                   err)) {
    cli.usage_error("--migrate: " + err);
  }
  return cfg.migration.enabled;
}

// Applies the shared --gvt=<spec> flag (GVT algorithm selection for Time
// Warp runs; see des/engine.hpp parse_gvt_spec for the grammar:
// mode=<barrier|epoch>[,interval=N]). A malformed spec is a usage error.
// The flag is harmless on non-Time-Warp kernels (sequential and
// conservative engines have no GVT).
inline void apply_gvt_flags(const util::Cli& cli, des::EngineConfig& cfg) {
  if (!cli.has("gvt")) return;
  std::string err;
  if (!des::parse_gvt_spec(cli.get("gvt", ""), cfg, err)) {
    cli.usage_error("--gvt: " + err);
  }
}

// Applies the shared --fc=<spec> flag (buffered flow-control scheme
// selection; see buffered/flow_control.hpp for the grammar). A malformed
// spec is a usage error.
inline void apply_fc_flags(const util::Cli& cli, core::SimulationOptions& o) {
  if (!cli.has("fc")) return;
  std::string err;
  if (!fc::FlowControlConfig::parse(cli.get("fc", ""), o.fc, err)) {
    cli.usage_error("--fc: " + err);
  }
}

inline void finish(util::Table& table, const util::Cli& cli,
                   const std::string& title,
                   const std::vector<obs::MetricsReport>& metrics = {},
                   const std::vector<obs::ModelChannel>& models = {},
                   const std::map<std::string, double>& headline = {},
                   const std::map<std::string, bool>& verdict = {}) {
  std::cout << title << "\n\n";
  table.print(std::cout);
  if (cli.has("csv")) {
    table.write_csv_file(cli.get("csv", ""));
    std::cout << "\ncsv written to " << cli.get("csv", "") << "\n";
  }
  if (cli.has("json")) {
    // Structured dump: the figure rows plus (when the bench collected them)
    // one full MetricsReport per row — named counters, per-phase timer
    // breakdown, GVT-round series.
    const std::string path = cli.get("json", "");
    std::ofstream f(path);
    HP_ASSERT(f.good(), "cannot open --json path %s", path.c_str());
    util::JsonWriter w(f);
    w.begin_object();
    w.kv("title", title);
    w.key("rows");
    table.write_json(w);
    if (!headline.empty()) {
      // Scalar figures of merit for perf tracking; scripts/perf_delta.py
      // compares these against the committed BENCH_*.json baselines.
      w.key("headline").begin_object();
      for (const auto& [k, v] : headline) w.kv(k, v);
      w.end_object();
    }
    if (!verdict.empty()) {
      // Named pass/fail claims the bench checked on its own rows (e.g. the
      // flow-control contrast's expected scheme ordering); CI validates the
      // shape and greps these for regressions.
      w.key("verdict").begin_object();
      for (const auto& [k, v] : verdict) w.kv(k, v);
      w.end_object();
    }
    if (!metrics.empty()) {
      w.key("metrics").begin_array();
      for (const obs::MetricsReport& m : metrics) m.write_json(w);
      w.end_array();
    }
    if (!models.empty()) {
      // Model metric channels, one per row, same order as `rows`.
      w.key("model").begin_array();
      for (const obs::ModelChannel& ch : models) ch.write_json(w);
      w.end_array();
    }
    w.end_object();
    HP_ASSERT(w.done(), "unbalanced JSON in bench dump");
    std::cout << "\njson written to " << path << "\n";
  }
}

inline std::map<std::string, std::string> common_flags() {
  return {{"full", "paper-scale sweep (N up to 256; slow)"},
          {"csv", "also write the table as CSV to this path"},
          {"json", "write rows + engine MetricsReports as JSON to this path"},
          {"monitor", "live heartbeat every N GVT rounds (bare = every round)"},
          {"monitor-out", "append the monitor JSON-lines stream to this file "
                          "instead of stderr"},
          {"telemetry", "record event-lifecycle latency histograms (queue "
                        "dwell, commit latency, rollback cost, inbox dwell)"},
          {"metrics-endpoint", "serve live Prometheus text on <port> "
                               "(loopback) or unix:<path>; implies "
                               "--telemetry"},
          {"metrics-out", "periodically rewrite a Prometheus text snapshot "
                          "to this file; implies --telemetry"},
          {"chaos", "deterministic fault plan for Time Warp runs, e.g. "
                    "delay:p=0.2,k=2;seed=7 (see des/fault.hpp)"},
          {"migrate", "runtime KP load balancing for Time Warp runs, e.g. "
                      "every=8,imbalance=1.5,max=1 (see des/migration.hpp)"},
          {"gvt", "GVT algorithm for Time Warp runs, e.g. "
                  "mode=epoch[,interval=N] (see docs/GVT.md)"},
          {"fc", "buffered flow-control scheme for contrast runs, e.g. "
                 "scheme=wormhole,qcap=4,flit=4,credit_delay=1 (see "
                 "buffered/flow_control.hpp)"},
          {"seed", "RNG seed for the simulated model"}};
}

}  // namespace hp::bench
