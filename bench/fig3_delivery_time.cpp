// Figure 3 — "Packet Delivery Time": average delivery time (time steps)
// versus network diameter N, one series per injection load. The report
// shows ~linear growth in N with the load having very limited effect.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const auto scale =
      cli.get_bool("full", false) ? hp::bench::full_scale()
                                  : hp::bench::quick_scale();

  hp::util::Table table({"N", "injectors_%", "avg_delivery_steps",
                         "avg_shortest_path", "stretch", "delivered"});
  for (const std::int32_t n : scale.sizes) {
    for (const double load : scale.loads) {
      hp::core::SimulationOptions o;
      o.model.n = n;
      o.model.injector_fraction = load;
      o.model.steps = hp::bench::steps_for(n);
      const auto r = hp::core::run_hotpotato(o).report;
      table.add_row({static_cast<std::int64_t>(n), 100.0 * load,
                     r.avg_delivery_steps(), r.avg_distance(), r.stretch(),
                     r.delivered});
    }
  }
  hp::bench::finish(table, cli,
                    "Figure 3: packet delivery time vs network diameter "
                    "(expect ~linear in N, nearly load-independent)");
  return 0;
}
