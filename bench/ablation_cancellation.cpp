// Ablation: aggressive vs lazy cancellation. Aggressive (the ROSS default)
// cancels a rolled-back event's children immediately; lazy keeps them alive
// and lets a re-execution adopt bit-identical re-sends, so unchanged
// subtrees survive the rollback. The win depends on how often a straggler
// actually changes the decision: hot-potato routing decisions depend on
// contended link state, so re-sends often differ; the reuse column
// quantifies how much survives anyway.

#include "bench/common.hpp"

#include <vector>

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const std::vector<std::int32_t> sizes =
      full ? std::vector<std::int32_t>{16, 32, 64}
           : std::vector<std::int32_t>{16, 32};

  hp::util::Table table({"N", "cancellation", "events_per_s", "rolled_back",
                         "anti_messages", "lazy_reused", "identical"});
  for (const std::int32_t n : sizes) {
    hp::core::SimulationResult ref;
    for (const bool lazy : {false, true}) {
      auto o = hp::bench::tw_options(n, 0.5, 2, 64);
      o.engine.cancellation = lazy ? hp::des::EngineConfig::Cancellation::Lazy
                            : hp::des::EngineConfig::Cancellation::Aggressive;
      const auto r = hp::core::run_hotpotato(o);
      if (!lazy) ref = r;
      table.add_row({static_cast<std::int64_t>(n),
                     lazy ? "lazy" : "aggressive (ROSS)",
                     r.engine.event_rate(), r.engine.rolled_back_events(),
                     r.engine.anti_messages(), r.engine.lazy_reused(),
                     lazy ? (r.report == ref.report ? "yes" : "NO") : "-"});
    }
  }
  hp::bench::finish(table, cli,
                    "Ablation: aggressive vs lazy cancellation (identical "
                    "results; lazy_reused children kept their subtrees)");
  return 0;
}
