// Ablation: pending-event queue implementation — the pending-set shoot-out.
// ROSS uses a splay tree (self-adjusting; the skewed temporal locality of
// DES event insertion makes its amortized behaviour close to O(1)); the STL
// multiset (red-black tree) is the natural reference point, and the ladder
// queue (Tang/Goh/Thng) and calendar queue (Brown) are the classic O(1)
// bucket contenders. Semantics are identical across all four backends
// (tests/test_pending_set.cpp) — this measures the data-structure cost
// inside the full engine loop, sequential and Time Warp, and the winner is
// promoted to EngineConfig::queue_kind's default. Current default: the
// ladder queue, which won the sequential (pure queue-cost) and 1-PE Time
// Warp rows by 25-80% over the splay tree; multi-PE rows on an
// oversubscribed host mostly measure scheduling noise.

#include "bench/common.hpp"

#include <string>
#include <vector>

#include "des/pending_set.hpp"

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const std::vector<std::int32_t> sizes =
      full ? std::vector<std::int32_t>{16, 32, 64, 128}
           : std::vector<std::int32_t>{16, 32, 64};

  hp::util::Table table(
      {"N", "kernel", "queue", "events_per_s", "identical"});
  for (const std::int32_t n : sizes) {
    // Committed state must be identical across every kernel × queue cell;
    // the first cell of each N is the reference. The sequential rows are the
    // pure queue-cost comparison (no rollback or barrier noise); the Time
    // Warp rows show how each backend holds up under rollback re-insertion.
    hp::core::SimulationResult ref;
    bool have_ref = false;
    for (const hp::des::EngineConfig::QueueKind kind : hp::des::kAllQueueKinds) {
      auto o = hp::bench::tw_options(n, 0.5, 1, 64);
      o.kernel = hp::core::Kernel::Sequential;
      o.engine.queue_kind = kind;
      const auto r = hp::core::run_hotpotato(o);
      if (!have_ref) {
        ref = r;
        have_ref = true;
      }
      table.add_row({static_cast<std::int64_t>(n), "sequential",
                     hp::des::queue_name(kind), r.engine.event_rate(),
                     r.report == ref.report ? "yes" : "NO"});
    }
    for (const std::uint32_t pes : {1u, 2u}) {
      for (const hp::des::EngineConfig::QueueKind kind :
           hp::des::kAllQueueKinds) {
        auto o = hp::bench::tw_options(n, 0.5, pes, 64);
        o.engine.queue_kind = kind;
        const auto r = hp::core::run_hotpotato(o);
        table.add_row({static_cast<std::int64_t>(n),
                       "timewarp-" + std::to_string(pes) + "pe",
                       hp::des::queue_name(kind), r.engine.event_rate(),
                       r.report == ref.report ? "yes" : "NO"});
      }
    }
  }
  hp::bench::finish(table, cli,
                    "Ablation: pending-set shoot-out — multiset vs splay vs "
                    "ladder vs calendar (identical results; compares "
                    "per-event queue cost)");
  return 0;
}
