// Ablation: pending-event queue implementation. ROSS uses a splay tree
// (self-adjusting; the skewed temporal locality of DES event insertion makes
// its amortized behaviour close to O(1)); the STL multiset (red-black tree)
// is the natural reference point. Semantics are identical — this measures
// the data-structure cost inside the full Time Warp loop.

#include "bench/common.hpp"

#include <vector>

#include <string>

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const std::vector<std::int32_t> sizes =
      full ? std::vector<std::int32_t>{16, 32, 64, 128}
           : std::vector<std::int32_t>{16, 32, 64};

  hp::util::Table table(
      {"N", "kernel", "queue", "events_per_s", "identical"});
  for (const std::int32_t n : sizes) {
    // Sequential baseline uses its own multiset; measure Time Warp at 1 PE
    // (no rollback noise: a pure queue-cost comparison) and at 2 PEs.
    hp::core::SimulationResult ref;
    bool have_ref = false;
    for (const std::uint32_t pes : {1u, 2u}) {
      for (const bool splay : {true, false}) {
        auto o = hp::bench::tw_options(n, 0.5, pes, 64);
        o.engine.queue_kind = splay ? hp::des::EngineConfig::QueueKind::Splay
                             : hp::des::EngineConfig::QueueKind::Multiset;
        const auto r = hp::core::run_hotpotato(o);
        if (!have_ref) {
          ref = r;
          have_ref = true;
        }
        table.add_row({static_cast<std::int64_t>(n),
                       "timewarp-" + std::to_string(pes) + "pe",
                       splay ? "splay (ROSS)" : "multiset (STL)",
                       r.engine.event_rate(),
                       r.report == ref.report ? "yes" : "NO"});
      }
    }
  }
  hp::bench::finish(table, cli,
                    "Ablation: splay-tree vs multiset pending queue "
                    "(identical results; compares per-event queue cost)");
  return 0;
}
