// Ablation (report Section 3.2.3): LP->KP->PE mapping locality. The report
// argues that assigning adjacent LPs to the same KP and adjacent KPs to the
// same PE minimizes inter-PE and inter-KP communication; random assignment
// is the worst case (nearly every routed packet crosses a PE boundary, so
// stragglers and rollbacks multiply). Block and linear mappings both produce
// contiguous PE regions on a torus (bands vs blocks); the random mapping is
// the true antagonist.
//
// The second scenario measures what a *static* mapping cannot fix: hotspot
// traffic. A quarter of all packets aim at four fixed routers; pinning the
// four hotspot KPs onto one PE is the adversarial static placement (that PE
// lags in virtual time, every other PE races ahead and gets rolled back by
// its stragglers). Arming the runtime KP balancer on the same bad initial
// placement must claw the wall-clock time back by re-homing the hot KPs —
// the rollback waste, not parallelism, is what it removes, so the win shows
// even on a single core.

#include "bench/common.hpp"
#include "des/sequential.hpp"
#include "des/timewarp.hpp"
#include "hotpotato/model.hpp"
#include "hotpotato/traffic.hpp"
#include "net/grid.hpp"
#include "net/mapping.hpp"

#include <memory>
#include <vector>

namespace {

struct MappingRun {
  const char* name;
  std::unique_ptr<hp::net::Mapping> mapping;
  bool migrate = false;
};

// Block LP->KP assignment with the KP->PE placement sabotaged: every KP
// hosting a hotspot router is pinned to PE 0 (the other KPs keep their
// block placement). The hotspot coordinates mirror traffic.cpp's quarter
// points — a change there shifts which KPs get pinned, nothing more.
class HotspotPinnedMapping final : public hp::net::Mapping {
 public:
  HotspotPinnedMapping(std::int32_t n, std::uint32_t num_kps,
                       std::uint32_t num_pes)
      : block_(n, num_kps, num_pes) {
    kp_pe_.resize(block_.num_kps());
    for (std::uint32_t kp = 0; kp < block_.num_kps(); ++kp) {
      kp_pe_[kp] = block_.pe_of_kp(kp);
    }
    const hp::net::Grid g(n, hp::net::GridKind::Torus);
    const std::int32_t q = n / 4;
    const hp::net::Coord spots[hp::hotpotato::kNumHotspots] = {
        {q, q}, {q, 3 * q}, {3 * q, q}, {3 * q, 3 * q}};
    for (const hp::net::Coord& c : spots) {
      kp_pe_[block_.kp_of(g.id_of(c))] = 0;
    }
  }

  std::uint32_t num_lps() const noexcept override { return block_.num_lps(); }
  std::uint32_t num_kps() const noexcept override { return block_.num_kps(); }
  std::uint32_t num_pes() const noexcept override { return block_.num_pes(); }
  std::uint32_t kp_of(std::uint32_t lp) const noexcept override {
    return block_.kp_of(lp);
  }
  std::uint32_t pe_of_kp(std::uint32_t kp) const noexcept override {
    return kp_pe_[kp];
  }

 private:
  hp::net::BlockMapping block_;
  std::vector<std::uint32_t> kp_pe_;
};

}  // namespace

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const std::vector<std::int32_t> sizes =
      full ? std::vector<std::int32_t>{16, 32, 64}
           : std::vector<std::int32_t>{16, 32};
  constexpr std::uint32_t kPes = 2;
  constexpr std::uint32_t kKps = 64;

  hp::util::Table table({"N", "traffic", "mapping", "inter_pe_link_%",
                         "wall_s", "events_per_s", "rolled_back",
                         "anti_messages", "kp_migrations", "identical"});

  // Scenario 1: mapping locality under uniform traffic (report figure).
  for (const std::int32_t n : sizes) {
    const auto nn =
        static_cast<std::uint32_t>(n) * static_cast<std::uint32_t>(n);
    hp::hotpotato::HotPotatoConfig mcfg;
    mcfg.n = n;
    mcfg.injector_fraction = 0.5;
    mcfg.steps = static_cast<std::uint32_t>(2 * n);
    hp::hotpotato::BhwPolicy policy(n);
    mcfg.policy = &policy;

    hp::des::EngineConfig ecfg;
    ecfg.num_lps = nn;
    ecfg.end_time = mcfg.end_time();
    ecfg.seed = 1;

    hp::hotpotato::HotPotatoModel ref_model(mcfg);
    hp::des::SequentialEngine seq(ref_model, ecfg);
    (void)seq.run();
    const auto ref = hp::hotpotato::collect_report(seq, mcfg.steps);

    std::vector<MappingRun> runs;
    runs.push_back({"block (report)",
                    std::make_unique<hp::net::BlockMapping>(n, kKps, kPes)});
    runs.push_back({"linear stripes",
                    std::make_unique<hp::net::LinearMapping>(nn, kKps, kPes)});
    runs.push_back(
        {"random (worst case)",
         std::make_unique<hp::net::RandomMapping>(nn, kKps, kPes, 7)});
    for (auto& run : runs) {
      auto cfg = ecfg;
      cfg.num_pes = kPes;
      cfg.num_kps = kKps;
      cfg.gvt_interval_events = 1024;
      cfg.optimism_window = 30.0;
      cfg.mapping = run.mapping.get();
      hp::hotpotato::HotPotatoModel model(mcfg);
      hp::des::TimeWarpEngine eng(model, cfg);
      const auto stats = eng.run();
      const auto report = hp::hotpotato::collect_report(eng, mcfg.steps);
      table.add_row({static_cast<std::int64_t>(n), "uniform", run.name,
                     100.0 * hp::net::inter_pe_link_fraction(*run.mapping, n),
                     stats.wall_seconds(), stats.event_rate(),
                     stats.rolled_back_events(), stats.anti_messages(),
                     stats.kp_migrations(), report == ref ? "yes" : "NO"});
    }
  }

  // Scenario 2: hotspot traffic vs static-vs-dynamic placement. Pinning the
  // hotspot KPs on PE 0 is the worst static block mapping; the same initial
  // placement plus the runtime balancer must beat it on wall clock.
  const std::int32_t skew_n = full ? 32 : 24;
  double wall_pinned = 0.0, wall_migrated = 0.0;
  {
    const auto nn = static_cast<std::uint32_t>(skew_n) *
                    static_cast<std::uint32_t>(skew_n);
    hp::hotpotato::HotPotatoConfig mcfg;
    mcfg.n = skew_n;
    mcfg.injector_fraction = 0.75;
    mcfg.steps = static_cast<std::uint32_t>(4 * skew_n);
    mcfg.traffic = hp::hotpotato::TrafficPattern::Hotspot;
    hp::hotpotato::BhwPolicy policy(skew_n);
    mcfg.policy = &policy;

    hp::des::EngineConfig ecfg;
    ecfg.num_lps = nn;
    ecfg.end_time = mcfg.end_time();
    ecfg.seed = 1;

    hp::hotpotato::HotPotatoModel ref_model(mcfg);
    hp::des::SequentialEngine seq(ref_model, ecfg);
    (void)seq.run();
    const auto ref = hp::hotpotato::collect_report(seq, mcfg.steps);

    std::vector<MappingRun> runs;
    runs.push_back(
        {"block (balanced)",
         std::make_unique<hp::net::BlockMapping>(skew_n, kKps, kPes)});
    runs.push_back(
        {"block (hotspots pinned)",
         std::make_unique<HotspotPinnedMapping>(skew_n, kKps, kPes)});
    runs.push_back(
        {"hotspots pinned + migrate",
         std::make_unique<HotspotPinnedMapping>(skew_n, kKps, kPes), true});
    for (auto& run : runs) {
      auto cfg = ecfg;
      cfg.num_pes = kPes;
      cfg.num_kps = kKps;
      cfg.gvt_interval_events = 1024;
      cfg.optimism_window = 30.0;
      cfg.mapping = run.mapping.get();
      if (run.migrate) {
        std::string err;
        const bool ok = hp::des::MigrationConfig::parse(
            "every=4,imbalance=1.5,max=1", cfg.migration, err);
        HP_ASSERT(ok, "migration spec: %s", err.c_str());
      }
      hp::hotpotato::HotPotatoModel model(mcfg);
      hp::des::TimeWarpEngine eng(model, cfg);
      const auto stats = eng.run();
      const auto report = hp::hotpotato::collect_report(eng, mcfg.steps);
      if (run.migrate) {
        wall_migrated = stats.wall_seconds();
      } else if (std::string(run.name) == "block (hotspots pinned)") {
        wall_pinned = stats.wall_seconds();
      }
      table.add_row(
          {static_cast<std::int64_t>(skew_n), "hotspot", run.name,
           100.0 * hp::net::inter_pe_link_fraction(*run.mapping, skew_n),
           stats.wall_seconds(), stats.event_rate(),
           stats.rolled_back_events(), stats.anti_messages(),
           stats.kp_migrations(), report == ref ? "yes" : "NO"});
    }
  }

  hp::bench::finish(table, cli,
                    "Ablation: LP->KP->PE mapping locality (uniform traffic: "
                    "random placement multiplies rollbacks; hotspot traffic: "
                    "runtime KP migration beats the worst static placement)");
  std::printf("\nskewed-traffic verdict: pinned=%.3fs pinned+migrate=%.3fs "
              "-> dynamic %s the worst static mapping\n",
              wall_pinned, wall_migrated,
              wall_migrated < wall_pinned ? "beats" : "DOES NOT beat");
  return 0;
}
