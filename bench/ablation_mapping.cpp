// Ablation (report Section 3.2.3): LP->KP->PE mapping locality. The report
// argues that assigning adjacent LPs to the same KP and adjacent KPs to the
// same PE minimizes inter-PE and inter-KP communication; random assignment
// is the worst case (nearly every routed packet crosses a PE boundary, so
// stragglers and rollbacks multiply). Block and linear mappings both produce
// contiguous PE regions on a torus (bands vs blocks); the random mapping is
// the true antagonist.

#include "bench/common.hpp"
#include "des/sequential.hpp"
#include "des/timewarp.hpp"
#include "hotpotato/model.hpp"
#include "net/mapping.hpp"

#include <vector>

namespace {

struct MappingRun {
  const char* name;
  std::unique_ptr<hp::net::Mapping> mapping;
};

}  // namespace

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const std::vector<std::int32_t> sizes =
      full ? std::vector<std::int32_t>{16, 32, 64}
           : std::vector<std::int32_t>{16, 32};
  constexpr std::uint32_t kPes = 2;
  constexpr std::uint32_t kKps = 64;

  hp::util::Table table({"N", "mapping", "inter_pe_link_%", "events_per_s",
                         "rolled_back", "anti_messages", "identical"});
  for (const std::int32_t n : sizes) {
    const auto nn = static_cast<std::uint32_t>(n) * static_cast<std::uint32_t>(n);
    hp::hotpotato::HotPotatoConfig mcfg;
    mcfg.n = n;
    mcfg.injector_fraction = 0.5;
    mcfg.steps = static_cast<std::uint32_t>(2 * n);
    hp::hotpotato::BhwPolicy policy(n);
    mcfg.policy = &policy;

    hp::des::EngineConfig ecfg;
    ecfg.num_lps = nn;
    ecfg.end_time = mcfg.end_time();
    ecfg.seed = 1;

    hp::hotpotato::HotPotatoModel ref_model(mcfg);
    hp::des::SequentialEngine seq(ref_model, ecfg);
    (void)seq.run();
    const auto ref = hp::hotpotato::collect_report(seq, mcfg.steps);

    std::vector<MappingRun> runs;
    runs.push_back({"block (report)",
                    std::make_unique<hp::net::BlockMapping>(n, kKps, kPes)});
    runs.push_back({"linear stripes",
                    std::make_unique<hp::net::LinearMapping>(nn, kKps, kPes)});
    runs.push_back({"random (worst case)",
                    std::make_unique<hp::net::RandomMapping>(nn, kKps, kPes, 7)});
    for (auto& run : runs) {
      auto cfg = ecfg;
      cfg.num_pes = kPes;
      cfg.num_kps = kKps;
      cfg.gvt_interval_events = 1024;
      cfg.optimism_window = 30.0;
      cfg.mapping = run.mapping.get();
      hp::hotpotato::HotPotatoModel model(mcfg);
      hp::des::TimeWarpEngine eng(model, cfg);
      const auto stats = eng.run();
      const auto report = hp::hotpotato::collect_report(eng, mcfg.steps);
      table.add_row({static_cast<std::int64_t>(n), run.name,
                     100.0 * hp::net::inter_pe_link_fraction(*run.mapping, n),
                     stats.event_rate(), stats.rolled_back_events(),
                     stats.anti_messages(), report == ref ? "yes" : "NO"});
    }
  }
  hp::bench::finish(table, cli,
                    "Ablation: LP->KP->PE mapping locality (expect the random "
                    "mapping's inter-PE traffic to multiply rollbacks and "
                    "anti-messages vs the contiguous mappings)");
  return 0;
}
