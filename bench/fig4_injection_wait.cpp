// Figure 4 — "Average Wait to Inject a Packet": average number of time
// steps a packet waits before it can enter the network, versus N, one
// series per injection load. The report shows ~linear growth in N *within*
// each load, with the load having a strong effect (unlike Fig. 3).

#include "bench/common.hpp"

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const auto scale =
      cli.get_bool("full", false) ? hp::bench::full_scale()
                                  : hp::bench::quick_scale();

  hp::util::Table table({"N", "injectors_%", "avg_wait_steps",
                         "max_wait_steps", "injected"});
  for (const std::int32_t n : scale.sizes) {
    for (const double load : scale.loads) {
      hp::core::SimulationOptions o;
      o.model.n = n;
      o.model.injector_fraction = load;
      o.model.steps = hp::bench::steps_for(n);
      const auto r = hp::core::run_hotpotato(o).report;
      table.add_row({static_cast<std::int64_t>(n), 100.0 * load,
                     r.avg_inject_wait(), r.max_inject_wait, r.injected});
    }
  }
  hp::bench::finish(table, cli,
                    "Figure 4: average wait to inject vs network diameter "
                    "(expect growth in N, strongly load-dependent)");
  return 0;
}
