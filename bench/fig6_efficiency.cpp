// Figure 6 — "Efficiency (Speed-Up / #PE)": the Fig. 5 sweep normalized by
// PE count. The report shows near-linear efficiency (~1) for small networks
// dropping to ~0.5 for the largest.

#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const auto scale = full ? hp::bench::full_scale() : hp::bench::quick_scale();
  std::vector<std::int32_t> sizes;
  for (const std::int32_t n : scale.sizes) {
    if (n >= 16) sizes.push_back(n);
  }

  hp::util::Table table({"N", "PEs", "speedup", "efficiency"});
  for (const std::int32_t n : sizes) {
    hp::core::SimulationOptions base;
    base.model.n = n;
    base.model.injector_fraction = 0.5;
    base.model.steps = static_cast<std::uint32_t>(2 * n);
    const double seq_rate = hp::core::run_hotpotato(base).engine.event_rate();
    for (const std::uint32_t pes : scale.pe_counts) {
      double rate;
      if (pes == 1) {
        rate = seq_rate;
      } else {
        auto o = hp::bench::tw_options(n, 0.5, pes, 64);
        hp::bench::apply_monitor_flags(cli, o.engine);
        rate = hp::core::run_hotpotato(o).engine.event_rate();
      }
      const double speedup = rate / seq_rate;
      table.add_row({static_cast<std::int64_t>(n),
                     static_cast<std::int64_t>(pes), speedup,
                     speedup / static_cast<double>(pes)});
    }
  }
  hp::bench::finish(
      table, cli,
      "Figure 6: efficiency = speed-up / #PE vs N — host has " +
          std::to_string(std::thread::hardware_concurrency()) +
          " hardware thread(s); values are meaningful only when PEs <= cores");
  return 0;
}
