// Topology study (report Section 1.1): the BHW analysis is stated on the
// rectangular mesh; the simulation uses the torus because the wraparound
// halves the maximum distance (N/2 per axis vs N-1). This harness runs the
// same workload on both and quantifies the gap — and shows the mesh's
// boundary routers deflect more (fewer links to escape through).

#include "bench/common.hpp"

#include <vector>

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const std::vector<std::int32_t> sizes =
      full ? std::vector<std::int32_t>{8, 16, 32, 64}
           : std::vector<std::int32_t>{8, 16, 32};

  hp::util::Table table({"N", "topology", "diameter", "avg_distance",
                         "avg_delivery", "stretch", "deflect_rate",
                         "avg_wait"});
  for (const std::int32_t n : sizes) {
    for (const hp::net::GridKind kind :
         {hp::net::GridKind::Torus, hp::net::GridKind::Mesh}) {
      hp::core::SimulationOptions o;
      o.model.n = n;
      o.model.topology = kind;
      o.model.injector_fraction = 0.5;
      o.model.steps = hp::bench::steps_for(n);
      const auto r = hp::core::run_hotpotato(o).report;
      const hp::net::Grid g(n, kind);
      table.add_row({static_cast<std::int64_t>(n),
                     hp::net::grid_kind_name(kind),
                     static_cast<std::int64_t>(g.diameter()),
                     r.avg_distance(), r.avg_delivery_steps(), r.stretch(),
                     r.deflection_rate(), r.avg_inject_wait()});
    }
  }
  hp::bench::finish(table, cli,
                    "Topology study: torus (simulated) vs mesh (analyzed) — "
                    "expect ~2x average distance and delivery on the mesh");
  return 0;
}
