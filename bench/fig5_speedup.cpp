// Figure 5 — "Parallel Speed-Up": committed event rate versus network
// diameter for 1, 2 and 4 PEs. The report (on a quad-CPU PC server) shows
// the 4-PE run approaching 4x for ~1024 LPs and ~2x for the largest
// networks. On a host with fewer cores than PEs the parallel rows measure
// Time Warp overhead instead of speed-up; the harness reports the core
// count so the reader can judge.

#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const auto scale = full ? hp::bench::full_scale() : hp::bench::quick_scale();
  std::vector<std::int32_t> sizes;
  for (const std::int32_t n : scale.sizes) {
    if (n >= 16) sizes.push_back(n);  // report sweeps N = 16..256
  }

  hp::util::Table table(
      {"N", "LPs", "PEs", "events_per_s", "committed", "rolled_back"});
  std::vector<hp::obs::MetricsReport> metrics;
  for (const std::int32_t n : sizes) {
    for (const std::uint32_t pes : scale.pe_counts) {
      hp::core::SimulationResult r;
      if (pes == 1) {
        hp::core::SimulationOptions o;
        o.model.n = n;
        o.model.injector_fraction = 0.5;
        o.model.steps = static_cast<std::uint32_t>(2 * n);
        r = hp::core::run_hotpotato(o);
      } else {
        auto o = hp::bench::tw_options(n, 0.5, pes, 64);
        hp::bench::apply_monitor_flags(cli, o.engine);
        r = hp::core::run_hotpotato(o);
      }
      table.add_row({static_cast<std::int64_t>(n),
                     static_cast<std::int64_t>(n) * n,
                     static_cast<std::int64_t>(pes), r.engine.event_rate(),
                     r.engine.committed_events(),
                     r.engine.rolled_back_events()});
      metrics.push_back(std::move(r.engine.metrics));
    }
  }
  hp::bench::finish(
      table, cli,
      "Figure 5: parallel speed-up (event rate vs N for 1/2/4 PEs) — host "
      "has " +
          std::to_string(std::thread::hardware_concurrency()) +
          " hardware thread(s); speed-up requires PEs <= cores",
      metrics);
  return 0;
}
