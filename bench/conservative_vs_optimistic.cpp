// The classic PDES synchronization comparison: conservative (bounded-window,
// zero rollback, parallelism capped by the model's lookahead) versus
// optimistic Time Warp (lookahead-free, pays in rolled-back work). PHOLD
// makes the trade-off dial-able: with generous lookahead the conservative
// kernel does no wasted work; as the lookahead shrinks its windows (and
// parallelism per barrier) collapse, while Time Warp's throughput is nearly
// lookahead-insensitive. The hot-potato rows show a real model (lookahead
// fixed at 4.0 by the step structure).

#include "bench/common.hpp"
#include "des/conservative.hpp"
#include "des/phold.hpp"
#include "des/sequential.hpp"
#include "des/timewarp.hpp"
#include "hotpotato/packet.hpp"

#include <string>

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);

  hp::util::Table table({"model", "lookahead", "kernel", "events_per_s",
                         "sync_rounds", "rolled_back", "identical"});

  // PHOLD with the lookahead dialed from generous to stingy.
  const std::uint32_t lps = full ? 512 : 256;
  for (const double lookahead : {0.5, 0.1, 0.02}) {
    hp::des::PholdConfig pc;
    pc.num_lps = lps;
    pc.remote_fraction = 0.5;
    pc.lookahead = lookahead;
    hp::des::EngineConfig ec;
    ec.num_lps = lps;
    ec.end_time = full ? 150.0 : 80.0;

    hp::des::PholdModel m0(pc);
    hp::des::SequentialEngine seq(m0, ec);
    const auto s = seq.run();
    const auto sdigest = hp::des::PholdModel::digest(seq);
    table.add_row({"phold", lookahead, "sequential", s.event_rate(),
                   std::uint64_t{0}, std::uint64_t{0}, "-"});

    auto cc = ec;
    cc.num_pes = 2;
    hp::des::PholdModel m1(pc);
    hp::des::ConservativeEngine cons(m1, cc, lookahead);
    const auto c = cons.run();
    table.add_row({"phold", lookahead, "conservative-2pe", c.event_rate(),
                   c.gvt_rounds(), std::uint64_t{0},
                   hp::des::PholdModel::digest(cons) == sdigest ? "yes" : "NO"});

    auto tc = ec;
    tc.num_pes = 2;
    tc.num_kps = 32;
    tc.gvt_interval_events = 1024;
    tc.optimism_window = 20.0 * pc.mean_delay;
    hp::des::PholdModel m2(pc);
    hp::des::TimeWarpEngine tw(m2, tc);
    const auto t = tw.run();
    table.add_row({"phold", lookahead, "timewarp-2pe", t.event_rate(),
                   t.gvt_rounds(), t.rolled_back_events(),
                   hp::des::PholdModel::digest(tw) == sdigest ? "yes" : "NO"});
  }

  // Hot-potato: fixed lookahead from the synchronous step structure.
  {
    const std::int32_t n = full ? 32 : 16;
    hp::core::SimulationOptions o;
    o.model.n = n;
    o.model.injector_fraction = 0.5;
    o.model.steps = static_cast<std::uint32_t>(2 * n);
    const auto seq = hp::core::run_hotpotato(o);
    table.add_row({"hotpotato", hp::hotpotato::kCrossLpLookahead, "sequential",
                   seq.engine.event_rate(), std::uint64_t{0}, std::uint64_t{0},
                   "-"});
    for (const hp::core::Kernel k :
         {hp::core::Kernel::Conservative, hp::core::Kernel::TimeWarp}) {
      auto p = o;
      p.kernel = k;
      p.engine.num_pes = 2;
      p.engine.num_kps = 64;
      p.engine.optimism_window = 30.0;
      const auto r = hp::core::run_hotpotato(p);
      table.add_row({"hotpotato", hp::hotpotato::kCrossLpLookahead,
                     std::string(hp::core::kernel_name(k)) + "-2pe",
                     r.engine.event_rate(), r.engine.gvt_rounds(),
                     r.engine.rolled_back_events(),
                     r.report == seq.report ? "yes" : "NO"});
    }
  }

  hp::bench::finish(table, cli,
                    "Conservative (bounded-window) vs optimistic (Time Warp) "
                    "synchronization — conservative throughput tracks the "
                    "lookahead; Time Warp pays in rollbacks instead");
  return 0;
}
