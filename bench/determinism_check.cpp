// Attachment 3 — sample output demonstrating that the parallel and
// sequential models produce identical results under the same configuration
// (the report's correctness/repeatability argument, Section 4.2.1).

#include <cstdio>

#include "bench/common.hpp"

namespace {

void print_report(const char* tag, const hp::core::SimulationResult& r) {
  std::printf("%-22s %s\n", tag, r.report.summary_line().c_str());
  std::printf("%-22s   arrivals=%llu routed=%llu link_claims=%llu "
              "pending=%llu committed_events=%llu\n",
              "", static_cast<unsigned long long>(r.report.arrivals),
              static_cast<unsigned long long>(r.report.routed),
              static_cast<unsigned long long>(r.report.link_claims),
              static_cast<unsigned long long>(r.report.pending_waiting),
              static_cast<unsigned long long>(r.engine.committed_events()));
}

}  // namespace

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const std::int32_t n = cli.get_bool("full", false) ? 32 : 16;

  hp::core::SimulationOptions base;
  base.model.n = n;
  base.model.injector_fraction = 0.75;
  base.model.steps = static_cast<std::uint32_t>(4 * n);

  std::printf("Attachment 3: repeatability check, %dx%d torus, 75%% "
              "injectors, %u steps\n\n",
              n, n, base.model.steps);

  const auto seq = hp::core::run_hotpotato(base);
  print_report("sequential", seq);

  bool all_identical = true;
  for (const std::uint32_t pes : {1u, 2u, 4u}) {
    auto o = hp::bench::tw_options(n, 0.75, pes, 64);
    o.model.steps = base.model.steps;
    const auto tw = hp::core::run_hotpotato(o);
    char tag[64];
    std::snprintf(tag, sizeof(tag), "timewarp %u PE(s)", pes);
    print_report(tag, tw);
    // Whole-channel comparison: every named model metric (including the
    // double sums and the delivery histogram) bit-for-bit, plus the typed
    // report view derived from it.
    const bool same = tw.model == seq.model && tw.report == seq.report;
    all_identical = all_identical && same;
    std::printf("%-22s   -> statistics %s\n", "",
                same ? "IDENTICAL to sequential" : "DIFFER (BUG)");
  }
  // Repeatability of the parallel run itself.
  auto o = hp::bench::tw_options(n, 0.75, 4, 64);
  o.model.steps = base.model.steps;
  const auto again = hp::core::run_hotpotato(o);
  const bool repeat = again.model == seq.model && again.report == seq.report;
  all_identical = all_identical && repeat;
  std::printf("\nrepeated 4-PE run: %s\n",
              repeat ? "IDENTICAL" : "DIFFERS (BUG)");
  std::printf("\nverdict: %s\n",
              all_identical
                  ? "deterministic and repeatable at every PE count"
                  : "NON-DETERMINISTIC (regression!)");
  return all_identical ? 0 : 1;
}
