// Attachment 3 — sample output demonstrating that the parallel and
// sequential models produce identical results under the same configuration
// (the report's correctness/repeatability argument, Section 4.2.1).
//
// --chaos=<spec> arms deterministic fault injection on the Time Warp runs
// only (the sequential baseline stays fault-free), turning this into the
// CI chaos-matrix harness: faults may only delay delivery, so every plan
// must still verify IDENTICAL. --monitor[-out] streams the Time Warp
// heartbeat (with the pool/throttle fields) for artifact capture.

#include <cstdio>

#include "bench/common.hpp"

namespace {

void print_report(const char* tag, const hp::core::SimulationResult& r) {
  std::printf("%-22s %s\n", tag, r.report.summary_line().c_str());
  std::printf("%-22s   arrivals=%llu routed=%llu link_claims=%llu "
              "pending=%llu committed_events=%llu\n",
              "", static_cast<unsigned long long>(r.report.arrivals),
              static_cast<unsigned long long>(r.report.routed),
              static_cast<unsigned long long>(r.report.link_claims),
              static_cast<unsigned long long>(r.report.pending_waiting),
              static_cast<unsigned long long>(r.engine.committed_events()));
}

}  // namespace

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const std::int32_t n = cli.get_bool("full", false) ? 32 : 16;

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  hp::core::SimulationOptions base;
  base.model.n = n;
  base.model.injector_fraction = 0.75;
  base.model.steps = static_cast<std::uint32_t>(4 * n);
  base.engine.seed = seed;

  // Fault injection applies to the Time Warp runs only; the sequential run
  // is the fault-free reference the chaotic runs must still match.
  hp::des::EngineConfig chaos_probe;
  const bool chaos = hp::bench::apply_chaos_flags(cli, chaos_probe);
  if (chaos) {
    std::printf("chaos plan (timewarp runs only): %s\n",
                chaos_probe.fault.to_string().c_str());
  }

  // Runtime KP migration likewise applies only to the Time Warp runs: the
  // committed results must stay bit-identical no matter how often ownership
  // moves, including with a chaos plan layered on top.
  hp::des::EngineConfig mig_probe;
  const bool migrate = hp::bench::apply_migration_flags(cli, mig_probe);
  if (migrate) {
    std::printf("migration plan (timewarp runs only): %s\n",
                mig_probe.migration.to_string().c_str());
  }

  // GVT algorithm matrix: by default every Time Warp configuration is
  // verified under BOTH the barrier and the asynchronous epoch algorithm —
  // GVT timing must never change committed state (docs/GVT.md). An explicit
  // --gvt=mode=... narrows the matrix to that one mode (and can also pin
  // the interval).
  hp::des::EngineConfig gvt_probe;
  const bool gvt_flag = cli.has("gvt");
  if (gvt_flag) hp::bench::apply_gvt_flags(cli, gvt_probe);
  const std::vector<hp::des::EngineConfig::GvtMode> gvt_modes =
      gvt_flag ? std::vector{gvt_probe.gvt_mode}
               : std::vector{hp::des::EngineConfig::GvtMode::Barrier,
                             hp::des::EngineConfig::GvtMode::Epoch};

  std::printf("Attachment 3: repeatability check, %dx%d torus, 75%% "
              "injectors, %u steps, seed %llu\n\n",
              n, n, base.model.steps,
              static_cast<unsigned long long>(seed));

  const auto seq = hp::core::run_hotpotato(base);
  print_report("sequential", seq);

  bool all_identical = true;
  for (const hp::des::EngineConfig::GvtMode mode : gvt_modes) {
    for (const std::uint32_t pes : {1u, 2u, 4u}) {
      auto o = hp::bench::tw_options(n, 0.75, pes, 64);
      o.model.steps = base.model.steps;
      o.engine.seed = seed;
      o.engine.gvt_mode = mode;
      if (gvt_flag) {
        o.engine.gvt_interval_events = gvt_probe.gvt_interval_events;
      }
      if (chaos) {
        auto plan = chaos_probe.fault;
        if (plan.stall_pe != hp::des::FaultPlan::kNoStallPe &&
            plan.stall_pe >= pes) {
          // The stall target does not exist at this PE count; disarm the
          // stall clause but keep the rest of the plan.
          plan.stall_pe = hp::des::FaultPlan::kNoStallPe;
          plan.stall_rounds = 0;
        }
        o.engine.fault = plan;
      }
      if (migrate) o.engine.migration = mig_probe.migration;
      hp::bench::apply_monitor_flags(cli, o.engine);
      // Telemetry stamps must never perturb committed state: the stamped
      // Time Warp runs still have to verify IDENTICAL against the unstamped
      // sequential reference.
      hp::bench::apply_telemetry_flags(cli, o.engine);
      const auto tw = hp::core::run_hotpotato(o);
      char tag[64];
      std::snprintf(tag, sizeof(tag), "timewarp %u PE(s) %s", pes,
                    hp::des::gvt_mode_name(mode));
      print_report(tag, tw);
      // Whole-channel comparison: every named model metric (including the
      // double sums and the delivery histogram) bit-for-bit, plus the typed
      // report view derived from it.
      const bool same = tw.model == seq.model && tw.report == seq.report;
      all_identical = all_identical && same;
      std::printf("%-22s   -> statistics %s\n", "",
                  same ? "IDENTICAL to sequential" : "DIFFER (BUG)");
    }
  }
  // Buffered flow-control runs ride the same whole-channel comparison: a
  // repeated run of every scheme must reproduce its ModelChannel (and the
  // typed report derived from it) bit for bit.
  std::printf("\n");
  for (const char* spec : {"scheme=saf,qcap=8,flit=4",
                           "scheme=vct,qcap=8,flit=4",
                           "scheme=wormhole,qcap=4,flit=4"}) {
    auto fo = base;
    std::string err;
    if (!hp::fc::FlowControlConfig::parse(spec, fo.fc, err)) {
      std::printf("fc spec %s rejected: %s\n", spec, err.c_str());
      all_identical = false;
      continue;
    }
    const auto a = hp::core::run_flow_control(fo);
    const auto b = hp::core::run_flow_control(fo);
    const bool same = a.model == b.model && a.report == b.report;
    all_identical = all_identical && same;
    char tag[64];
    std::snprintf(tag, sizeof(tag), "fc %s",
                  hp::fc::kind_name(fo.fc.scheme));
    std::printf("%-22s %s\n", tag, a.report.summary_line().c_str());
    std::printf("%-22s   -> repeated run %s\n", "",
                same ? "IDENTICAL" : "DIFFERS (BUG)");
  }

  // Repeatability of the parallel run itself, under the epoch algorithm —
  // its closes are raced by all PEs, so a repeated run is the sharper test
  // (an explicit --gvt pins the mode instead).
  auto o = hp::bench::tw_options(n, 0.75, 4, 64);
  o.model.steps = base.model.steps;
  o.engine.seed = seed;
  o.engine.gvt_mode = gvt_flag ? gvt_probe.gvt_mode
                               : hp::des::EngineConfig::GvtMode::Epoch;
  if (gvt_flag) o.engine.gvt_interval_events = gvt_probe.gvt_interval_events;
  if (chaos && (chaos_probe.fault.stall_pe == hp::des::FaultPlan::kNoStallPe ||
                chaos_probe.fault.stall_pe < 4)) {
    o.engine.fault = chaos_probe.fault;
  }
  if (migrate) o.engine.migration = mig_probe.migration;
  hp::bench::apply_telemetry_flags(cli, o.engine);
  const auto again = hp::core::run_hotpotato(o);
  const bool repeat = again.model == seq.model && again.report == seq.report;
  all_identical = all_identical && repeat;
  std::printf("\nrepeated 4-PE run: %s\n",
              repeat ? "IDENTICAL" : "DIFFERS (BUG)");
  std::printf("\nverdict: %s\n",
              all_identical
                  ? "deterministic and repeatable at every PE count"
                  : "NON-DETERMINISTIC (regression!)");
  return all_identical ? 0 : 1;
}
