// Figures 7a/7b/7c — "Effect of the Number of KPs on the Total Events
// Rolled Back": rollback volume versus KP count, one series per network
// size. The report shows rollbacks falling steeply with more KPs for small
// networks (finer rollback granularity = fewer false rollbacks), with the
// effect washing out for large networks.

#include "bench/common.hpp"

#include <vector>

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const auto scale = full ? hp::bench::full_scale() : hp::bench::quick_scale();
  const std::vector<std::int32_t> sizes =
      full ? std::vector<std::int32_t>{16, 32, 64, 128, 256}
           : std::vector<std::int32_t>{16, 32};

  hp::util::Table table({"N", "KPs", "events_rolled_back", "primary_rollbacks",
                         "secondary_rollbacks", "primary_events",
                         "secondary_events", "max_cascade", "anti_messages",
                         "committed"});
  std::vector<hp::obs::MetricsReport> metrics;
  std::vector<hp::obs::ModelChannel> models;
  for (const std::int32_t n : sizes) {
    for (const std::uint32_t kps : scale.kp_counts) {
      if (kps > static_cast<std::uint32_t>(n) * static_cast<std::uint32_t>(n)) {
        continue;  // cannot have more KPs than LPs
      }
      auto o = hp::bench::tw_options(n, 0.5, 2, kps);
      hp::bench::apply_monitor_flags(cli, o.engine);
      auto r = hp::core::run_hotpotato(o);
      table.add_row({static_cast<std::int64_t>(n),
                     static_cast<std::int64_t>(kps),
                     r.engine.rolled_back_events(), r.engine.primary_rollbacks(),
                     r.engine.secondary_rollbacks(),
                     r.engine.primary_rollback_events(),
                     r.engine.secondary_rollback_events(),
                     r.engine.max_cascade_depth(), r.engine.anti_messages(),
                     r.engine.committed_events()});
      metrics.push_back(std::move(r.engine.metrics));
      models.push_back(std::move(r.model));
    }
  }
  hp::bench::finish(table, cli,
                    "Figure 7: total events rolled back vs number of KPs "
                    "(expect steep drop with KPs for small N, flattening for "
                    "large N; primary = straggler-caused, secondary = "
                    "anti-message-induced)",
                    metrics, models);
  return 0;
}
